//! Cross-crate integration: generate → transform → analyze → simulate →
//! exactly solve, with every consistency relation between the layers
//! checked on fixed seeds through the public facade.

use hetrta::analysis::HeterogeneousAnalysis;
use hetrta::exact::{solve, SolverConfig};
use hetrta::gen::offload::{make_hetero_task, CoffSizing, OffloadSelection};
use hetrta::gen::{generate_nfj, NfjParams};
use hetrta::sim::policy::{BreadthFirst, CriticalPathFirst, DepthFirst};
use hetrta::sim::trace::validate_schedule;
use hetrta::sim::{simulate, Platform};
use hetrta::{HeteroDagTask, Ticks};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn make_task(seed: u64, params: &NfjParams, fraction: f64) -> HeteroDagTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let dag = generate_nfj(params, &mut rng).expect("generation succeeds");
    if dag.node_count() < 3 {
        return make_task(seed + 1000, params, fraction);
    }
    make_hetero_task(
        dag,
        OffloadSelection::AnyInterior,
        CoffSizing::VolumeFraction(fraction),
        &mut rng,
    )
    .expect("offload succeeds")
}

/// Every consistency relation between the layers, for one seed.
fn check_all_layers_agree(seeds: std::ops::Range<u64>) {
    let params = NfjParams::small_tasks().with_node_range(5, 22);
    for seed in seeds {
        for fraction in [0.05, 0.25, 0.55] {
            let task = make_task(seed, &params, fraction);
            for m in [1u64, 2, 4] {
                let report = HeterogeneousAnalysis::run(&task, m).unwrap();
                let platform = Platform::with_accelerator(m as usize);

                // Simulations of τ' stay under R_het and validate.
                let g2 = report.transformed().transformed();
                for policy in 0..3 {
                    let run = match policy {
                        0 => simulate(
                            g2,
                            Some(task.offloaded()),
                            platform,
                            &mut BreadthFirst::new(),
                        ),
                        1 => simulate(g2, Some(task.offloaded()), platform, &mut DepthFirst::new()),
                        _ => simulate(
                            g2,
                            Some(task.offloaded()),
                            platform,
                            &mut CriticalPathFirst::new(),
                        ),
                    }
                    .unwrap();
                    assert!(run.makespan().to_rational() <= report.r_het());
                    validate_schedule(g2, Some(task.offloaded()), &run).unwrap();
                }

                // Exact optimum ≤ any simulation of τ, and ≤ R_hom.
                let sol = solve(
                    task.dag(),
                    Some(task.offloaded()),
                    m,
                    &SolverConfig::default(),
                )
                .unwrap();
                let bfs = simulate(
                    task.dag(),
                    Some(task.offloaded()),
                    platform,
                    &mut BreadthFirst::new(),
                )
                .unwrap();
                if sol.is_optimal() {
                    assert!(sol.makespan() <= bfs.makespan());
                    assert!(sol.makespan().to_rational() <= report.r_hom_original());
                }
            }
        }
    }
}

#[test]
fn all_layers_agree_on_small_tasks_quick() {
    check_all_layers_agree(0..5);
}

#[test]
#[ignore = "full 25-seed cross-layer sweep (minutes); run with --ignored"]
fn all_layers_agree_on_small_tasks() {
    check_all_layers_agree(0..25);
}

#[test]
fn generated_large_tasks_analyze_quickly_and_consistently() {
    let params = NfjParams::large_tasks().with_node_range(100, 250);
    for seed in 0..10u64 {
        let task = make_task(seed, &params, 0.2);
        let mut previous = None;
        for m in [2u64, 4, 8, 16] {
            let report = HeterogeneousAnalysis::run(&task, m).unwrap();
            // bounds shrink with more cores
            if let Some(prev) = previous {
                assert!(report.r_het() <= prev);
            }
            previous = Some(report.r_het());
            // R_het(τ') bound relationships from the paper
            assert!(
                report.r_het() <= report.r_hom_transformed()
                    || report.scenario() == hetrta::Scenario::OffOnCriticalPathDominated
            );
            assert!(report.best_bound() <= report.r_hom_original());
        }
    }
}

#[test]
fn layered_generator_tasks_work_end_to_end() {
    use hetrta::gen::layered::{generate_layered, LayeredParams};
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = generate_layered(&LayeredParams::default(), &mut rng).unwrap();
        let task = make_hetero_task(
            dag,
            OffloadSelection::AnyInterior,
            CoffSizing::VolumeFraction(0.3),
            &mut rng,
        )
        .unwrap();
        let report = HeterogeneousAnalysis::run(&task, 4).unwrap();
        let run = simulate(
            report.transformed().transformed(),
            Some(task.offloaded()),
            Platform::with_accelerator(4),
            &mut BreadthFirst::new(),
        )
        .unwrap();
        assert!(run.makespan().to_rational() <= report.r_het());
    }
}

#[test]
fn dummy_terminal_normalization_integrates_with_analysis() {
    // A multi-source, multi-sink workload normalized by the builder:
    // two sources {a, c}, two sinks {z, w}.
    let mut b = hetrta::DagBuilder::new();
    let a = b.node("a", Ticks::new(5));
    let c = b.node("c", Ticks::new(7));
    let k = b.node("k", Ticks::new(9));
    let z = b.node("z", Ticks::new(4));
    let w = b.node("w", Ticks::new(2));
    b.edges([(a, k), (c, k), (k, z), (k, w)]).unwrap();
    b.add_dummy_terminals();
    let dag = b.build().unwrap();
    let task = HeteroDagTask::new(dag, k, Ticks::new(100), Ticks::new(100)).unwrap();
    let report = HeterogeneousAnalysis::run(&task, 2).unwrap();
    assert!(report.is_schedulable());
    // the dummies have zero WCET, so volume is untouched
    assert_eq!(task.volume(), Ticks::new(27));
}
