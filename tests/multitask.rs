//! End-to-end multi-task pipeline through the facade: generate a task set,
//! run every set-level test, replay accepted sets in the sporadic
//! simulator, and cross-check the self-suspending baselines.

use hetrta::sched::model::{AnalysisModel, DeviceModel};
use hetrta::sched::taskset::{generate_task_set, sort_deadline_monotonic, TaskSetParams};
use hetrta::sched::{gedf_test, gfp_test};
use hetrta::sim::sporadic::{
    deadline_monotonic_order, hyperperiod, simulate_sporadic, Discipline, SporadicConfig,
};
use hetrta::sim::Platform;
use hetrta::suspend::{BaselineComparison, FlatSuspendingTask};
use hetrta::{HeteroDagTask, Ticks};
use rand::rngs::StdRng;
use rand::SeedableRng;

const HET: AnalysisModel = AnalysisModel::Heterogeneous(DeviceModel::DedicatedPerTask);

fn demo_set(seed: u64, n: usize, util: f64) -> Vec<HeteroDagTask> {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = TaskSetParams::small(n, util).with_offload_fraction(0.2, 0.4);
    let mut set = generate_task_set(&params, &mut rng).expect("generation succeeds");
    sort_deadline_monotonic(&mut set);
    set
}

#[test]
fn facade_exposes_the_full_multitask_pipeline() {
    let set = demo_set(1, 3, 1.2);
    let m = 4u64;

    // Analytical verdicts.
    let fp_hom = gfp_test(&set, m, AnalysisModel::Homogeneous).unwrap();
    let fp_het = gfp_test(&set, m, HET).unwrap();
    let edf_het = gedf_test(&set, m, HET).unwrap();
    assert_eq!(fp_hom.per_task.len(), 3);

    // The heterogeneous FP test dominates the homogeneous one per task.
    for (h, e) in fp_hom.per_task.iter().zip(&fp_het.per_task) {
        if let (Some(rh), Some(re)) = (&h.response_bound, &e.response_bound) {
            assert!(re <= rh, "het bound {re} above hom bound {rh}");
        }
    }

    // Replay under the sporadic simulator (transformed tasks for het).
    if fp_het.is_schedulable() {
        let tset: Vec<HeteroDagTask> = set
            .iter()
            .map(|t| {
                let tr = hetrta::analysis::transform(t).unwrap();
                HeteroDagTask::new(
                    tr.transformed().clone(),
                    tr.offloaded(),
                    t.period(),
                    t.deadline(),
                )
                .unwrap()
            })
            .collect();
        let horizon = hyperperiod(&tset)
            .unwrap_or(Ticks::new(10_000))
            .min(Ticks::new(50_000));
        let config = SporadicConfig::new(Platform::new(m as usize, tset.len()), horizon)
            .discipline(Discipline::FixedPriority);
        let run = simulate_sporadic(&tset, &config).unwrap();
        assert!(
            !run.any_deadline_miss(),
            "accepted set missed in simulation"
        );
    }
    let _ = edf_het;
}

#[test]
fn dm_order_helpers_agree() {
    let set = demo_set(2, 4, 1.0);
    // set is already DM-sorted; the sim helper must return identity.
    assert_eq!(deadline_monotonic_order(&set), vec![0, 1, 2, 3]);
}

#[test]
fn suspension_baselines_bracket_theorem_1_through_facade() {
    let set = demo_set(3, 1, 0.4);
    let task = &set[0];
    for m in [2u64, 4, 16] {
        let c = BaselineComparison::compute(task, m).unwrap();
        assert!(c.best_sound() <= c.oblivious);
        assert!(c.r_het_tight <= c.r_het);
        let flat = FlatSuspendingTask::of(task).unwrap();
        assert_eq!(flat.execution() + flat.suspension, task.volume());
    }
}

#[test]
fn shared_device_configuration_is_consistent_end_to_end() {
    let set = demo_set(4, 2, 0.8);
    let m = 4u64;
    let shared = gfp_test(
        &set,
        m,
        AnalysisModel::Heterogeneous(DeviceModel::SharedFifo),
    )
    .unwrap();
    let dedicated = gfp_test(&set, m, HET).unwrap();
    for (s, d) in shared.per_task.iter().zip(&dedicated.per_task) {
        if let (Some(rs), Some(rd)) = (&s.response_bound, &d.response_bound) {
            assert!(rs >= rd, "shared-device bound tighter than dedicated");
        }
    }
    if shared.is_schedulable() {
        // Replay on the literal single-device platform.
        let tset: Vec<HeteroDagTask> = set
            .iter()
            .map(|t| {
                let tr = hetrta::analysis::transform(t).unwrap();
                HeteroDagTask::new(
                    tr.transformed().clone(),
                    tr.offloaded(),
                    t.period(),
                    t.deadline(),
                )
                .unwrap()
            })
            .collect();
        let horizon = Ticks::new(tset.iter().map(|t| t.period().get()).max().unwrap() * 3);
        let config = SporadicConfig::new(Platform::with_accelerator(m as usize), horizon);
        let run = simulate_sporadic(&tset, &config).unwrap();
        assert!(!run.any_deadline_miss());
    }
}
