//! End-to-end assertion of every number the paper states about its worked
//! example (Figures 1–2), through the public facade crate.

use hetrta::analysis::HeterogeneousAnalysis;
use hetrta::sim::policy::{BreadthFirst, CriticalPathFirst};
use hetrta::sim::{explore_worst_case, simulate, Platform};
use hetrta::{DagBuilder, HeteroDagTask, NodeId, Rational, Scenario, Ticks};

fn figure1() -> (HeteroDagTask, [NodeId; 6]) {
    let mut b = DagBuilder::new();
    let v1 = b.node("v1", Ticks::new(1));
    let v2 = b.node("v2", Ticks::new(4));
    let v3 = b.node("v3", Ticks::new(6));
    let v4 = b.node("v4", Ticks::new(2));
    let v5 = b.node("v5", Ticks::new(1));
    let voff = b.node("v_off", Ticks::new(4));
    b.edges([
        (v1, v2),
        (v1, v3),
        (v1, v4),
        (v4, voff),
        (v2, v5),
        (v3, v5),
        (voff, v5),
    ])
    .unwrap();
    let task =
        HeteroDagTask::new(b.build().unwrap(), voff, Ticks::new(50), Ticks::new(50)).unwrap();
    (task, [v1, v2, v3, v4, v5, voff])
}

#[test]
fn section_3_2_homogeneous_bound_is_13() {
    let (task, _) = figure1();
    let report = HeterogeneousAnalysis::run(&task, 2).unwrap();
    assert_eq!(task.volume(), Ticks::new(18));
    assert_eq!(task.critical_path_length(), Ticks::new(8));
    assert_eq!(report.r_hom_original(), Rational::from_integer(13));
}

#[test]
fn section_3_2_worst_case_heterogeneous_response_is_12() {
    let (task, _) = figure1();
    let worst = explore_worst_case(
        task.dag(),
        Some(task.offloaded()),
        Platform::with_accelerator(2),
        500,
    )
    .unwrap();
    // The paper: "the response time is 12, which is higher than the
    // reduced R_hom computed above, 11" — naive discounting is unsound.
    assert_eq!(worst.makespan(), Ticks::new(12));
    let naive = Rational::from_integer(11);
    assert!(worst.makespan().to_rational() > naive);
}

#[test]
fn section_3_3_transformation_lengthens_critical_path_to_10() {
    let (task, _) = figure1();
    let report = HeterogeneousAnalysis::run(&task, 2).unwrap();
    assert_eq!(report.transformed().len_transformed(), Ticks::new(10));
    // G_par = {v2, v3}
    assert_eq!(report.transformed().par_nodes().len(), 2);
}

#[test]
fn section_4_heterogeneous_bound_is_scenario_1() {
    let (task, _) = figure1();
    let report = HeterogeneousAnalysis::run(&task, 2).unwrap();
    assert_eq!(report.scenario(), Scenario::OffNotOnCriticalPath);
    assert_eq!(report.r_het(), Rational::from_integer(12));
    // The heterogeneous bound beats the homogeneous one here.
    assert!(report.r_het() < report.r_hom_original());
}

#[test]
fn figure_2b_schedule_of_transformed_task_has_makespan_10() {
    let (task, _) = figure1();
    let report = HeterogeneousAnalysis::run(&task, 2).unwrap();
    let run = simulate(
        report.transformed().transformed(),
        Some(task.offloaded()),
        Platform::with_accelerator(2),
        &mut BreadthFirst::new(),
    )
    .unwrap();
    assert_eq!(run.makespan(), Ticks::new(10));
}

#[test]
fn optimal_heterogeneous_makespan_is_8() {
    let (task, _) = figure1();
    // CP-first realizes the optimum on this instance…
    let run = simulate(
        task.dag(),
        Some(task.offloaded()),
        Platform::with_accelerator(2),
        &mut CriticalPathFirst::new(),
    )
    .unwrap();
    assert_eq!(run.makespan(), Ticks::new(8));
    // …and the exact solver proves it.
    let sol = hetrta::exact::solve(
        task.dag(),
        Some(task.offloaded()),
        2,
        &hetrta::exact::SolverConfig::default(),
    )
    .unwrap();
    assert_eq!(sol.makespan(), Ticks::new(8));
    assert!(sol.is_optimal());
}
