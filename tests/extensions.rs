//! Integration of the beyond-the-paper extensions through the facade:
//! OpenMP lowering → analysis → simulation, multi-offload bounds, and
//! federated scheduling.

use hetrta::analysis::federated::{federated_partition, minimum_cores, AnalysisKind};
use hetrta::analysis::multi::r_het_multi;
use hetrta::analysis::HeterogeneousAnalysis;
use hetrta::gen::openmp::{Program, Stmt};
use hetrta::sim::policy::BreadthFirst;
use hetrta::sim::{simulate, simulate_multi, Platform};
use hetrta::{HeteroDagTask, Ticks};

fn pipeline_program(gpu_wcet: u64) -> Program {
    Program::new(vec![
        Stmt::work("pre", 3),
        Stmt::offload("gpu", gpu_wcet),
        Stmt::spawn(Program::new(vec![Stmt::work("f1", 10)])),
        Stmt::spawn(Program::new(vec![
            Stmt::work("f2a", 4),
            Stmt::spawn(Program::new(vec![Stmt::work("f2b", 6)])),
            Stmt::work("f2c", 2),
        ])),
        Stmt::work("host", 5),
        Stmt::Taskwait,
        Stmt::work("post", 2),
    ])
}

#[test]
fn openmp_program_end_to_end() {
    let lowered = pipeline_program(25).lower().unwrap();
    hetrta::dag::validate_task_model(&lowered.dag).unwrap();
    let v_off = lowered.offloaded.unwrap();
    let vol = lowered.dag.volume();
    assert_eq!(vol, Ticks::new(57));
    let task = HeteroDagTask::new(lowered.dag, v_off, vol, vol).unwrap();

    for m in [1u64, 2, 4] {
        let report = HeterogeneousAnalysis::run(&task, m).unwrap();
        let run = simulate(
            report.transformed().transformed(),
            Some(v_off),
            Platform::with_accelerator(m as usize),
            &mut BreadthFirst::new(),
        )
        .unwrap();
        assert!(run.makespan().to_rational() <= report.r_het());
    }
}

#[test]
fn openmp_offload_size_drives_scenarios() {
    // Tiny GPU region: v_off off the critical path (scenario 1); huge GPU
    // region: v_off dominates (scenario 2.1).
    let small = pipeline_program(1);
    let large = pipeline_program(200);
    for (program, expect_dominant) in [(small, false), (large, true)] {
        let lowered = program.lower().unwrap();
        let vol = lowered.dag.volume();
        let task = HeteroDagTask::new(lowered.dag, lowered.offloaded.unwrap(), vol, vol).unwrap();
        let report = HeterogeneousAnalysis::run(&task, 2).unwrap();
        let dominant = report.scenario() == hetrta::Scenario::OffOnCriticalPathDominant;
        assert_eq!(
            dominant,
            expect_dominant,
            "scenario was {}",
            report.scenario()
        );
    }
}

#[test]
fn multi_offload_extension_through_facade() {
    let mut b = hetrta::DagBuilder::new();
    let src = b.node("src", Ticks::new(1));
    let k1 = b.node("k1", Ticks::new(12));
    let k2 = b.node("k2", Ticks::new(12));
    let h = b.node("h", Ticks::new(8));
    let sink = b.node("sink", Ticks::new(1));
    b.edges([
        (src, k1),
        (src, k2),
        (src, h),
        (k1, sink),
        (k2, sink),
        (h, sink),
    ])
    .unwrap();
    let dag = b.build().unwrap();

    let one_dev = r_het_multi(&dag, &[k1, k2], 2, 1).unwrap();
    let two_dev = r_het_multi(&dag, &[k1, k2], 2, 2).unwrap();
    assert!(two_dev.value() <= one_dev.value());

    // simulated executions respect the per-program bounds
    for d in [1usize, 2] {
        let bound = r_het_multi(&dag, &[k1, k2], 2, d as u64).unwrap();
        let run = simulate_multi(
            &dag,
            &[k1, k2],
            Platform::new(2, d),
            &mut BreadthFirst::new(),
        )
        .unwrap();
        assert!(run.makespan().to_rational() <= bound.typed_bound());
    }
}

#[test]
fn federated_extension_through_facade() {
    let make_task = |gpu: u64, deadline: u64| {
        let lowered = pipeline_program(gpu).lower().unwrap();
        HeteroDagTask::new(
            lowered.dag.clone(),
            lowered.offloaded.unwrap(),
            Ticks::new(deadline),
            Ticks::new(deadline),
        )
        .unwrap()
    };
    let tasks = vec![make_task(25, 45), make_task(40, 60), make_task(10, 40)];
    let het = federated_partition(&tasks, 12, AnalysisKind::Heterogeneous).unwrap();
    let hom = federated_partition(&tasks, 12, AnalysisKind::Homogeneous).unwrap();
    assert!(het.cores_needed <= hom.cores_needed);
    assert!(het.is_schedulable());
    // per-task sizing agrees with direct queries
    for a in &het.assignments {
        let (m, bound) = minimum_cores(&tasks[a.task], AnalysisKind::Heterogeneous, 12)
            .unwrap()
            .unwrap();
        assert_eq!(m, a.cores);
        assert_eq!(bound, a.bound);
    }
}
