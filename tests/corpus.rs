//! The curated `.hdag` task corpus under `tasks/` parses, validates, and
//! analyzes soundly end to end.

use hetrta::analysis::HeterogeneousAnalysis;
use hetrta::dag::io::{parse_task, TaskKind};
use hetrta::sim::policy::BreadthFirst;
use hetrta::sim::{simulate, trace::validate_schedule, Platform};
use hetrta::{HeteroDagTask, Rational, Scenario};

fn corpus() -> Vec<(String, HeteroDagTask)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tasks");
    let mut tasks = Vec::new();
    for entry in std::fs::read_dir(dir).expect("tasks/ directory exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("hdag") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable task file");
        let parsed =
            parse_task(&text).unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        let TaskKind::Heterogeneous(task) = parsed.task else {
            panic!("{} should declare an offload", path.display());
        };
        tasks.push((
            path.file_name().unwrap().to_string_lossy().into_owned(),
            task,
        ));
    }
    assert!(tasks.len() >= 4, "corpus should have at least 4 tasks");
    tasks
}

#[test]
fn corpus_parses_and_validates() {
    for (name, task) in corpus() {
        hetrta::dag::validate_task_model(task.dag())
            .unwrap_or_else(|e| panic!("{name}: invalid model: {e}"));
        assert!(task.c_off() > hetrta::Ticks::ZERO, "{name}: zero offload");
    }
}

#[test]
fn corpus_analyzes_soundly_on_every_platform() {
    for (name, task) in corpus() {
        for m in [1u64, 2, 4, 8] {
            let report = HeterogeneousAnalysis::run(&task, m)
                .unwrap_or_else(|e| panic!("{name}: analysis failed: {e}"));
            let run = simulate(
                report.transformed().transformed(),
                Some(task.offloaded()),
                Platform::with_accelerator(m as usize),
                &mut BreadthFirst::new(),
            )
            .unwrap();
            assert!(
                run.makespan().to_rational() <= report.r_het(),
                "{name} (m={m}): simulated {} > R_het {}",
                run.makespan(),
                report.r_het()
            );
            validate_schedule(
                report.transformed().transformed(),
                Some(task.offloaded()),
                &run,
            )
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}

#[test]
fn figure1_corpus_entry_matches_paper() {
    let (_, task) = corpus()
        .into_iter()
        .find(|(name, _)| name == "figure1.hdag")
        .expect("figure1.hdag in corpus");
    let report = HeterogeneousAnalysis::run(&task, 2).unwrap();
    assert_eq!(report.r_hom_original(), Rational::from_integer(13));
    assert_eq!(report.r_het(), Rational::from_integer(12));
    assert_eq!(report.scenario(), Scenario::OffNotOnCriticalPath);
}

#[test]
fn sequential_offload_entry_is_degenerate_scenario_21() {
    let (_, task) = corpus()
        .into_iter()
        .find(|(name, _)| name == "sequential_offload.hdag")
        .expect("sequential_offload.hdag in corpus");
    let report = HeterogeneousAnalysis::run(&task, 4).unwrap();
    assert!(report.transformed().is_degenerate());
    assert_eq!(report.scenario(), Scenario::OffOnCriticalPathDominant);
    // chain: everything serial, bound = vol = 64 regardless of m
    assert_eq!(report.r_het(), Rational::from_integer(64));
}

#[test]
fn hcond_corpus_files_parse_and_analyze() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tasks");
    let mut found = 0;
    for entry in std::fs::read_dir(dir).expect("tasks/ directory exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("hcond") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable file");
        let expr = hetrta::cond::parse_expr(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        expr.validate().unwrap();
        // Round-trip through the canonical renderer.
        let back = hetrta::cond::parse_expr(&hetrta::cond::render_expr(&expr)).unwrap();
        assert_eq!(back, expr);
        // The bounds hold their ordering on every core count.
        for m in [1u64, 2, 8] {
            let aware = hetrta::cond::r_cond(&expr, m).unwrap();
            let flat = hetrta::cond::r_parallel_flattening(&expr, m).unwrap();
            let exact = hetrta::cond::r_cond_exact(&expr, m, 1024).unwrap();
            assert!(exact <= aware);
            assert!(aware <= flat);
        }
        found += 1;
    }
    assert!(found >= 1, "corpus should have at least one .hcond file");
}
